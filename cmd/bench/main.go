// Command bench records the repository's benchmark baseline: it runs the Go
// benchmarks with fixed iteration counts and writes a machine-readable
// snapshot (BENCH_5.json by default) mapping every benchmark to its ns/op,
// B/op, and allocs/op. Committing the snapshot gives future changes a
// performance trajectory to diff against — `make bench` regenerates it.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_5.json] [-bench regex] [-benchtime 50x]
//	                   [-pkg ./,./internal/desim] [-timeout 30m]
//
// The snapshot format is documented in the README ("Benchmark baselines"):
//
//	{
//	  "schema": "streamsched-bench/v1",
//	  "go": "go1.22.0",
//	  "benchtime": "50x",
//	  "benchmarks": {
//	    "BenchmarkFig13Simulation/FFT/Leap-8": {
//	      "iters": 50, "ns_per_op": 198374, "bytes_per_op": 42, "allocs_per_op": 0
//	    },
//	    ...
//	  }
//	}
//
// ns_per_op is wall-clock time per operation; a fixed -benchtime keeps the
// simulated workload identical across runs, so two snapshots are directly
// comparable (on comparable hardware — the snapshot deliberately records no
// timestamps or host details beyond the Go version). The raw `go test`
// output streams to stderr for eyeballing.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the BENCH_5.json document.
type snapshot struct {
	Schema     string            `json:"schema"`
	Go         string            `json:"go"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches `go test -bench` output rows, with or without -benchmem
// columns, e.g.:
//
//	BenchmarkFig13Simulation/FFT/Leap-8  50  198374 ns/op  42 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_5.json", "snapshot file to write")
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "50x", "fixed iteration count (or duration) per benchmark")
	pkgs := flag.String("pkg", "./,./internal/desim", "comma-separated packages whose benchmarks to run")
	timeout := flag.String("timeout", "30m", "go test timeout")
	flag.Parse()

	if err := run(*out, *bench, *benchtime, *pkgs, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out, bench, benchtime, pkgs, timeout string) error {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", "-count", "1", "-timeout", timeout}
	args = append(args, strings.Split(pkgs, ",")...)

	var buf bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}

	snap := snapshot{
		Schema:     "streamsched-bench/v1",
		Go:         runtime.Version(),
		Benchtime:  benchtime,
		Benchmarks: map[string]result{},
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var r result
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		snap.Benchmarks[m[1]] = r
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results parsed; check -bench/-pkg")
	}

	data, err := json.MarshalIndent(&snap, "", "  ") // map keys marshal sorted
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d benchmarks to %s (benchtime %s)\n",
		len(snap.Benchmarks), out, benchtime)
	return nil
}
