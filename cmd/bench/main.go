// Command bench records and gates the repository's benchmark baseline.
//
// Without -diff it runs the Go benchmarks with fixed iteration counts and
// writes a machine-readable snapshot (the next numbered BENCH_<N>.json by
// default) mapping every benchmark to its ns/op, B/op, and allocs/op.
// Committing the snapshot gives future changes a performance trajectory to
// diff against — `make bench` regenerates it.
//
// With -diff the snapshot becomes an enforceable gate: the tool runs the
// benchmarks again (or, with -against, reads a second snapshot file), then
// compares against the named baseline and exits nonzero if any benchmark
// regressed beyond tolerance. Because shared machines drift — the whole
// suite runs 10-30% slower between two identical runs — the gate divides
// every ns/op ratio by the suite's median ratio before applying tolerance,
// so only benchmarks that moved relative to the rest of the suite fail;
// the correction is clamped (a change that slows everything down cannot
// normalize itself away) and -raw disables it. `make bench-diff` wires the
// gate against the latest committed baseline; CI runs it with a loose
// ns/op tolerance (wall-clock times do not transfer across machines) and
// a strict allocs/op tolerance (allocation counts do).
//
// Usage:
//
//	go run ./cmd/bench [-out FILE] [-bench regex] [-benchtime 50x]
//	                   [-pkg ./,./internal/desim] [-timeout 30m]
//	go run ./cmd/bench -diff latest [-against FILE] [-tolerance 10]
//	                   [-alloc-tolerance 0] [-tolerance-for key=pct,...]
//	                   [-allow regex,...]
//
// The snapshot format (schema streamsched-bench/v2) keys every benchmark by
// its package import path so equally named benchmarks in different packages
// cannot collide, and strips the -GOMAXPROCS suffix go test appends on
// multi-core machines (recorded once in the header instead) so keys are
// portable across machines:
//
//	{
//	  "schema": "streamsched-bench/v2",
//	  "go": "go1.22.0",
//	  "gomaxprocs": 1,
//	  "benchtime": "50x",
//	  "count": 3,
//	  "benchmarks": {
//	    "repro/BenchmarkFig13Simulation/FFT/Leap": {
//	      "iters": 50, "ns_per_op": 198374, "bytes_per_op": 42, "allocs_per_op": 0
//	    },
//	    ...
//	  }
//	}
//
// ns_per_op is wall-clock time per operation, the minimum over -count
// repetitions (scheduling noise only adds time, so the minimum is the most
// repeatable estimate); a fixed -benchtime keeps the simulated workload
// identical across runs, so two snapshots are directly comparable (on
// comparable hardware — the snapshot deliberately records no timestamps or
// host details beyond the Go version and GOMAXPROCS). The
// gate never compares bytes_per_op: tiny amortized warm-up allocations make
// it drift with iteration count. The raw `go test` output streams to stderr
// for eyeballing.
//
// Exit status: 0 clean, 1 gate regression, 2 usage or infrastructure error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the BENCH_<N>.json document.
type snapshot struct {
	Schema     string            `json:"schema"`
	Go         string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchtime  string            `json:"benchtime"`
	Count      int               `json:"count"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// schemaV2 keys benchmarks by package import path and strips the
// -GOMAXPROCS suffix; v1 snapshots used raw benchmark names and cannot be
// compared (a v1 baseline silently merged all -pkg packages into one
// namespace).
const schemaV2 = "streamsched-bench/v2"

var (
	// benchLine matches `go test -bench` output rows, with or without
	// -benchmem columns, e.g.:
	//
	//	BenchmarkFig13Simulation/FFT/Leap-8  50  198374 ns/op  42 B/op  0 allocs/op
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)
	// pkgLine matches the `pkg: repro/internal/desim` header go test prints
	// before each package's benchmarks.
	pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)
	// procsSuffix matches the -GOMAXPROCS suffix go test appends to every
	// benchmark name when GOMAXPROCS > 1 (absent on single-core runs).
	procsSuffix = regexp.MustCompile(`-(\d+)$`)
	// benchFile matches committed baseline snapshots in the repo root.
	benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)
)

// parseBench parses `go test -bench` output into results keyed by
// "importpath/BenchmarkName" with the -GOMAXPROCS suffix stripped, and
// returns the GOMAXPROCS the suffixes implied (1 when absent). Package
// qualification makes equally named benchmarks in different packages
// distinct keys instead of silently overwriting each other; repeats of the
// SAME key (go test -count > 1) are folded by taking the per-column minimum
// — scheduling noise only ever adds time, so the minimum is the most
// repeatable estimate of a benchmark's cost.
func parseBench(output string) (map[string]result, int, error) {
	benchmarks := map[string]result{}
	procs := 1
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if s := procsSuffix.FindStringSubmatch(name); s != nil {
			name = strings.TrimSuffix(name, s[0])
			if n, _ := strconv.Atoi(s[1]); n > procs {
				procs = n
			}
		}
		key := name
		if pkg != "" {
			key = pkg + "/" + name
		}
		var r result
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if prev, ok := benchmarks[key]; ok {
			r.NsPerOp = min(r.NsPerOp, prev.NsPerOp)
			r.BytesPerOp = min(r.BytesPerOp, prev.BytesPerOp)
			r.AllocsPerOp = min(r.AllocsPerOp, prev.AllocsPerOp)
		}
		benchmarks[key] = r
	}
	return benchmarks, procs, nil
}

// latestBaseline scans dir for BENCH_<N>.json files and returns the highest
// N (0 and "" when none exist).
func latestBaseline(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := 0
	name := ""
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n > best {
			best, name = n, e.Name()
		}
	}
	return name, best, nil
}

func main() {
	out := flag.String("out", "", "snapshot file to write (default: the next numbered BENCH_<N>.json; with -diff, only written if set explicitly)")
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "50x", "fixed iteration count (or duration) per benchmark")
	count := flag.Int("count", 3, "go test -count repetitions; the snapshot records each benchmark's minimum, the most repeatable estimate under scheduling noise")
	pkgs := flag.String("pkg", "./,./internal/desim,./internal/schedule", "comma-separated packages whose benchmarks to run")
	timeout := flag.String("timeout", "30m", "go test timeout")
	diffBase := flag.String("diff", "", "baseline snapshot to gate against (\"latest\" resolves the highest BENCH_<N>.json); runs the benchmarks, compares, and exits 1 on any regression")
	against := flag.String("against", "", "with -diff: gate this existing snapshot file instead of running the benchmarks")
	tol := flag.Float64("tolerance", 10, "default ns/op regression tolerance, percent over baseline")
	allocTol := flag.Float64("alloc-tolerance", 0, "allocs/op regression tolerance, percent over baseline (allocation counts are machine-independent, so the default is exact)")
	tolFor := flag.String("tolerance-for", "", "per-benchmark ns/op tolerance overrides, comma-separated key=percent pairs (full v2 keys)")
	allow := flag.String("allow", "", "comma-separated regexes of known-noisy benchmarks exempt from the ns/op gate (still alloc-gated)")
	raw := flag.Bool("raw", false, "compare absolute ns/op without normalizing out suite-wide machine drift")
	flag.Parse()

	code, err := run(*out, *bench, *benchtime, *count, *pkgs, *timeout,
		*diffBase, *against, *tol, *allocTol, *tolFor, *allow, *raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
	}
	os.Exit(code)
}

func run(out, bench, benchtime string, count int, pkgs, timeout,
	diffBase, against string, tol, allocTol float64, tolFor, allow string, raw bool) (int, error) {

	if diffBase == "" {
		if against != "" {
			return 2, fmt.Errorf("-against requires -diff")
		}
		if out == "" {
			_, n, err := latestBaseline(".")
			if err != nil {
				return 2, err
			}
			out = fmt.Sprintf("BENCH_%d.json", n+1)
		}
		snap, err := runBenchmarks(bench, benchtime, count, pkgs, timeout)
		if err != nil {
			return 2, err
		}
		if err := writeSnapshot(out, snap); err != nil {
			return 2, err
		}
		return 0, nil
	}

	opt, err := parseGateOpts(tol, allocTol, tolFor, allow)
	if err != nil {
		return 2, err
	}
	opt.raw = raw
	if diffBase == "latest" {
		name, _, err := latestBaseline(".")
		if err != nil {
			return 2, err
		}
		if name == "" {
			return 2, fmt.Errorf("-diff latest: no BENCH_<N>.json baseline in %s", mustAbs("."))
		}
		diffBase = name
	}
	base, err := readSnapshot(diffBase)
	if err != nil {
		return 2, err
	}
	var cur snapshot
	if against != "" {
		if cur, err = readSnapshot(against); err != nil {
			return 2, err
		}
	} else {
		if cur, err = runBenchmarks(bench, benchtime, count, pkgs, timeout); err != nil {
			return 2, err
		}
		if out != "" {
			if err := writeSnapshot(out, cur); err != nil {
				return 2, err
			}
		}
	}
	rep, err := compareSnapshots(base, cur, opt)
	if err != nil {
		return 2, err
	}
	for _, l := range rep.lines {
		fmt.Println(l)
	}
	if n := len(rep.regressions); n > 0 {
		fmt.Printf("bench-diff: FAIL — %d regression(s) vs %s (see above; to bless an intentional change, commit a new baseline via `make bench`)\n", n, diffBase)
		return 1, nil
	}
	fmt.Printf("bench-diff: ok — %d benchmarks within tolerance of %s\n", len(base.Benchmarks), diffBase)
	return 0, nil
}

func mustAbs(p string) string {
	if a, err := filepath.Abs(p); err == nil {
		return a
	}
	return p
}

// runBenchmarks executes go test -bench and parses the output into a v2
// snapshot, folding -count repetitions into per-benchmark minima.
func runBenchmarks(bench, benchtime string, count int, pkgs, timeout string) (snapshot, error) {
	if count < 1 {
		count = 1
	}
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", "-count", strconv.Itoa(count), "-timeout", timeout}
	args = append(args, strings.Split(pkgs, ",")...)

	var buf bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return snapshot{}, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	benchmarks, procs, err := parseBench(buf.String())
	if err != nil {
		return snapshot{}, err
	}
	if len(benchmarks) == 0 {
		return snapshot{}, fmt.Errorf("no benchmark results parsed; check -bench/-pkg")
	}
	return snapshot{
		Schema:     schemaV2,
		Go:         runtime.Version(),
		GOMAXPROCS: procs,
		Benchtime:  benchtime,
		Count:      count,
		Benchmarks: benchmarks,
	}, nil
}

func writeSnapshot(path string, snap snapshot) error {
	data, err := json.MarshalIndent(&snap, "", "  ") // map keys marshal sorted
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d benchmarks to %s (benchtime %s)\n",
		len(snap.Benchmarks), path, snap.Benchtime)
	return nil
}

func readSnapshot(path string) (snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != schemaV2 {
		return snapshot{}, fmt.Errorf("%s: schema %q is not %q; regenerate the baseline with `make bench` (v2 keys benchmarks by package and strips the GOMAXPROCS suffix)",
			path, snap.Schema, schemaV2)
	}
	return snap, nil
}

// gateOpts are the tolerances of one bench-diff comparison.
type gateOpts struct {
	tolerance      float64            // ns/op regression tolerance, percent
	allocTolerance float64            // allocs/op regression tolerance, percent
	perBench       map[string]float64 // ns/op override per full v2 key
	allow          []*regexp.Regexp   // ns/op-exempt benchmark keys
	raw            bool               // skip machine-drift normalization
}

// Drift normalization bounds: the median new/baseline ns ratio is treated
// as machine-wide drift (shared hardware runs the whole suite 10-30%
// faster or slower between runs) and divided out of every comparison, so
// the gate flags benchmarks that moved relative to the suite. The
// correction is clamped — a change that slows the entire suite beyond
// maxDrift cannot normalize itself away — and skipped for tiny snapshots,
// where a real regression could dominate the median.
const (
	maxDrift        = 1.5
	minDriftSamples = 5
)

// driftFactor estimates machine-wide drift as the clamped median ratio of
// cur to base ns/op over the benchmarks present in both snapshots.
func driftFactor(base, cur snapshot) float64 {
	var ratios []float64
	for k, b := range base.Benchmarks {
		if c, ok := cur.Benchmarks[k]; ok && b.NsPerOp > 0 && c.NsPerOp > 0 {
			ratios = append(ratios, c.NsPerOp/b.NsPerOp)
		}
	}
	if len(ratios) < minDriftSamples {
		return 1
	}
	sort.Float64s(ratios)
	mid := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		mid = (mid + ratios[len(ratios)/2-1]) / 2
	}
	if mid > maxDrift {
		return maxDrift
	}
	if mid < 1/maxDrift {
		return 1 / maxDrift
	}
	return mid
}

func parseGateOpts(tol, allocTol float64, tolFor, allow string) (gateOpts, error) {
	opt := gateOpts{tolerance: tol, allocTolerance: allocTol, perBench: map[string]float64{}}
	if tolFor != "" {
		for _, pair := range strings.Split(tolFor, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return opt, fmt.Errorf("-tolerance-for: %q is not key=percent", pair)
			}
			pct, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return opt, fmt.Errorf("-tolerance-for %q: %w", pair, err)
			}
			opt.perBench[k] = pct
		}
	}
	if allow != "" {
		for _, pat := range strings.Split(allow, ",") {
			re, err := regexp.Compile(strings.TrimSpace(pat))
			if err != nil {
				return opt, fmt.Errorf("-allow %q: %w", pat, err)
			}
			opt.allow = append(opt.allow, re)
		}
	}
	return opt, nil
}

func (o *gateOpts) allowed(key string) bool {
	for _, re := range o.allow {
		if re.MatchString(key) {
			return true
		}
	}
	return false
}

// gateReport is the outcome of one comparison: human-readable lines plus
// the keys that regressed.
type gateReport struct {
	lines       []string
	regressions []string
}

// compareSnapshots gates cur against base. A regression is a baseline
// benchmark missing from cur, drift-adjusted ns/op above the
// (per-benchmark) tolerance on a non-allowlisted benchmark, or allocs/op
// above the alloc tolerance (allowlisting does not exempt allocations).
// Benchmarks only in cur are reported but never fail; bytes_per_op is
// never compared.
func compareSnapshots(base, cur snapshot, opt gateOpts) (gateReport, error) {
	var rep gateReport
	if base.Benchtime != cur.Benchtime {
		return rep, fmt.Errorf("benchtime mismatch: baseline %q vs new %q — the workloads are not comparable", base.Benchtime, cur.Benchtime)
	}
	if base.Count != cur.Count {
		rep.lines = append(rep.lines, fmt.Sprintf("note: repetition count differs (baseline min of %d, new min of %d); fewer repetitions bias ns/op upward",
			base.Count, cur.Count))
	}
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		rep.lines = append(rep.lines, fmt.Sprintf("note: GOMAXPROCS differs (baseline %d, new %d); wall-clock comparisons are indicative only",
			base.GOMAXPROCS, cur.GOMAXPROCS))
	}

	drift := 1.0
	if !opt.raw {
		drift = driftFactor(base, cur)
		if pct := 100 * (drift - 1); pct > 2 || pct < -2 {
			rep.lines = append(rep.lines, fmt.Sprintf("note: normalizing ns/op for %+.0f%% suite-wide machine drift (clamped to ±%.0f%%); pass -raw to compare absolute times",
				pct, 100*(maxDrift-1)))
		}
	}

	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fail := func(key, format string, args ...any) {
		rep.regressions = append(rep.regressions, key)
		rep.lines = append(rep.lines, fmt.Sprintf("REGRESSION %s: %s", key, fmt.Sprintf(format, args...)))
	}
	for _, key := range keys {
		b := base.Benchmarks[key]
		c, ok := cur.Benchmarks[key]
		if !ok {
			fail(key, "missing from new snapshot")
			continue
		}
		if b.NsPerOp > 0 {
			tol := opt.tolerance
			if t, ok := opt.perBench[key]; ok {
				tol = t
			}
			pct := 100 * (c.NsPerOp/drift - b.NsPerOp) / b.NsPerOp
			switch {
			case pct > tol && opt.allowed(key):
				rep.lines = append(rep.lines, fmt.Sprintf("allowed %s: ns/op +%.1f%% drift-adjusted (%.0f -> %.0f), over %.0f%% tolerance but allowlisted as noisy",
					key, pct, b.NsPerOp, c.NsPerOp, tol))
			case pct > tol:
				fail(key, "ns/op +%.1f%% drift-adjusted (%.0f -> %.0f), tolerance %.0f%%", pct, b.NsPerOp, c.NsPerOp, tol)
			}
		}
		limit := float64(b.AllocsPerOp) * (1 + opt.allocTolerance/100)
		if float64(c.AllocsPerOp) > limit {
			fail(key, "allocs/op %d -> %d, tolerance %.0f%%", b.AllocsPerOp, c.AllocsPerOp, opt.allocTolerance)
		}
	}
	extra := 0
	for k := range cur.Benchmarks {
		if _, ok := base.Benchmarks[k]; !ok {
			extra++
		}
	}
	if extra > 0 {
		rep.lines = append(rep.lines, fmt.Sprintf("note: %d benchmark(s) not in baseline (new benchmarks pass; bless them into the next baseline via `make bench`)", extra))
	}
	return rep, nil
}
