// Command streamsched schedules a canonical task graph onto an abstract
// dataflow device and reports the streaming schedule, the FIFO buffer sizes
// required for deadlock freedom, and (optionally) a discrete-event
// validation of the result.
//
// Usage:
//
//	streamsched -synth chain -size 8 -pes 4                 # generated input
//	streamsched -graph app.json -pes 16 -variant rlx -sim   # JSON input
//	streamsched -model encoder -pes 256                     # ML model graphs
//	streamsched -synth fft -size 32 -sweep 32,64,96,128     # parallel PE sweep
//
// JSON graphs list canonical nodes (kind: compute/buffer/source/sink with
// per-edge in/out volumes) and edges as node-index pairs; see
// examples/quickstart for the builder API.
//
// -sweep schedules the graph at every PE count of a comma-separated list on
// the worker pool of internal/experiments (-workers goroutines, default
// GOMAXPROCS; -shard i/n runs only one shard of the list) and prints one
// table row per PE count. To regenerate the paper's full evaluation —
// including sharding across processes, artifact merging, and the
// persistent results cache — use cmd/experiments; docs/ARCHITECTURE.md
// maps how the two commands share the scheduling and experiment layers.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buffers"
	"repro/internal/core"
	"repro/internal/desim"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/noc"
	"repro/internal/schedule"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streamsched:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "JSON task graph to schedule")
		synthName = flag.String("synth", "", "generate a synthetic graph: chain, fft, gaussian, cholesky")
		model     = flag.String("model", "", "generate an ML model graph: resnet, encoder, vgg, mlp (add -full for published sizes)")
		size      = flag.Int("size", 8, "synthetic size parameter (tasks, points, matrix, or tiles)")
		seed      = flag.Int64("seed", 1, "random seed for synthetic volumes")
		pes       = flag.Int("pes", 4, "number of processing elements")
		variant   = flag.String("variant", "lts", "spatial block heuristic: lts or rlx")
		sim       = flag.Bool("sim", false, "validate the schedule with the discrete-event simulator")
		simEngine = flag.String("sim-engine", "auto", "simulator engine for -sim: auto (cost-model pick), leap (event-leaping fast path), or reference (unit-stepping oracle); results are identical")
		dotPath   = flag.String("dot", "", "write the task graph in Graphviz DOT format to this file")
		showTasks = flag.Bool("tasks", false, "print the per-task schedule table")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file of the schedule")
		place     = flag.Bool("place", false, "place blocks on a 2D mesh NoC and report congestion")
		pipeline  = flag.Bool("pipeline", false, "report steady-state pipelining of repeated iterations")
		sweepPEs  = flag.String("sweep", "", "schedule at every PE count of this comma-separated list, in parallel")
		workers   = flag.Int("workers", 0, "worker goroutines for -sweep (default GOMAXPROCS)")
		shard     = flag.String("shard", "", "run only shard i of n sweep entries, format i/n")
		listVar   = flag.Bool("list-variants", false, "list the experiment pipeline's registered variants and workloads, then exit")
	)
	flag.Parse()

	if *listVar {
		return listVariants()
	}

	tg, err := loadGraph(*graphPath, *synthName, *model, *size, *seed)
	if err != nil {
		return err
	}

	var v schedule.Variant
	switch *variant {
	case "lts":
		v = schedule.SBLTS
	case "rlx":
		v = schedule.SBRLX
	default:
		return fmt.Errorf("unknown variant %q (want lts or rlx)", *variant)
	}

	if *sweepPEs != "" {
		return runSweep(tg, v, *sweepPEs, *workers, *shard)
	}

	part, err := schedule.Algorithm1(tg, *pes, schedule.Options{Variant: v})
	if err != nil {
		return err
	}
	res, err := schedule.Schedule(tg, part, *pes)
	if err != nil {
		return err
	}
	sizes := buffers.Sizes(tg, res)

	fmt.Printf("graph: %d nodes (%d compute), %d edges\n",
		tg.Len(), tg.NumComputeNodes(), tg.G.NumEdges())
	fmt.Printf("schedule (%s, %d PEs): %d spatial blocks, makespan %.0f\n",
		v, *pes, part.NumBlocks(), res.Makespan)
	fmt.Printf("T1 %.0f   speedup %.2f   SSLR %.3f   utilization %.1f%%\n",
		schedule.SequentialTime(tg), res.Speedup(tg), res.SSLR(tg), 100*res.Utilization(tg, *pes))

	var extra int64
	var cycleEdges int
	for _, e := range sizes {
		if e.OnCycle {
			cycleEdges++
			extra += e.Space
		}
	}
	fmt.Printf("buffers: %d streaming edges, %d on undirected cycles, %d total FIFO slots on cycle edges\n",
		len(sizes), cycleEdges, extra)

	if *showTasks {
		printTasks(tg, res)
	}
	if *gantt {
		fmt.Print(trace.Gantt(tg, res, 100))
		fmt.Print(trace.Summary(tg, res))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, tg, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
	if *place {
		mesh := noc.NewMesh(*pes)
		// The seed flag deterministically drives the annealer; equal inputs
		// give byte-identical placement reports.
		_, costs, err := noc.PlaceAll(tg, res, mesh, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("placement on %dx%d mesh (annealed):\n", mesh.W, mesh.H)
		for b, c := range costs {
			fmt.Printf("  block %2d: hop-volume %.0f, max link load %.0f, avg hops %.2f, congestion x%.2f\n",
				b, c.TotalHopVolume, c.MaxLinkLoad, c.AvgHops, c.CongestionFactor())
		}
	}
	if *pipeline {
		p := schedule.AnalyzePipeline(tg, res)
		fmt.Printf("pipeline: latency %.0f, initiation interval %.0f, steady-state throughput %.3g iters/cycle\n",
			p.Latency, p.InitiationInterval, p.Throughput())
	}

	if *sim {
		engine, err := desim.ParseEngine(*simEngine)
		if err != nil {
			return fmt.Errorf("-sim-engine: %w", err)
		}
		st, err := desim.Simulate(tg, res, desim.Config{FIFOCap: buffers.SizeMap(tg, res), Engine: engine})
		if err != nil {
			return err
		}
		if st.Deadlocked {
			fmt.Printf("simulation: DEADLOCK at cycle %d\n", st.DeadlockCycle)
		} else {
			fmt.Printf("simulation: makespan %.0f (relative error %+.2f%%), no deadlock\n",
				st.Makespan, 100*st.RelativeError(res.Makespan))
		}
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(tg.DOT("taskgraph")); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
	return nil
}

// sweepRow is one PE configuration of the -sweep table.
type sweepRow struct {
	pes      int
	blocks   int
	makespan float64
	speedup  float64
	util     float64
}

// runSweep schedules tg at every PE count of the list on the experiments
// worker pool and prints one row per PE count, in list order.
func runSweep(tg *core.TaskGraph, v schedule.Variant, list string, workers int, shard string) error {
	var pes []int
	for _, s := range strings.Split(list, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -sweep entry %q", s)
		}
		pes = append(pes, p)
	}
	if shard != "" {
		idx, count, err := experiments.ParseShard(shard)
		if err != nil {
			return err
		}
		var kept []int
		for i, p := range pes {
			if i%count == idx {
				kept = append(kept, p)
			}
		}
		pes = kept
	}

	rows, errs := experiments.RunIndexed(workers, len(pes), func(i int) (sweepRow, error) {
		p := pes[i]
		part, err := schedule.Algorithm1(tg, p, schedule.Options{Variant: v})
		if err != nil {
			return sweepRow{}, err
		}
		res, err := schedule.Schedule(tg, part, p)
		if err != nil {
			return sweepRow{}, err
		}
		return sweepRow{
			pes:      p,
			blocks:   part.NumBlocks(),
			makespan: res.Makespan,
			speedup:  res.Speedup(tg),
			util:     res.Utilization(tg, p),
		}, nil
	})

	fmt.Printf("sweep (%s): %d nodes, %d PE configurations\n", v, tg.Len(), len(pes))
	fmt.Printf("%6s %8s %10s %8s %8s\n", "PEs", "blocks", "makespan", "speedup", "util")
	failed := 0
	for i, r := range rows {
		if errs[i] != nil {
			fmt.Printf("%6d  FAILED: %v\n", pes[i], errs[i])
			failed++
			continue
		}
		fmt.Printf("%6d %8d %10.0f %8.2f %7.1f%%\n", r.pes, r.blocks, r.makespan, r.speedup, 100*r.util)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sweep entries failed", failed, len(pes))
	}
	return nil
}

func loadGraph(path, synthName, model string, size int, seed int64) (*core.TaskGraph, error) {
	selected := 0
	for _, s := range []string{path, synthName, model} {
		if s != "" {
			selected++
		}
	}
	if selected != 1 {
		return nil, fmt.Errorf("choose exactly one of -graph, -synth, or -model")
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.DecodeJSON(f)
	}
	if model != "" {
		// Model graphs come from the experiment pipeline's workload
		// registry ("onnx:<name>"), the same sources Table 2 evaluates.
		w, err := experiments.LookupWorkload("onnx:" + model)
		if err != nil {
			return nil, fmt.Errorf("unknown model %q (see -list-variants)", model)
		}
		return w.Build(experiments.Options{}, 0)
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := synth.DefaultConfig()
	switch synthName {
	case "chain":
		return synth.Chain(size, rng, cfg), nil
	case "fft":
		return synth.FFT(size, rng, cfg), nil
	case "gaussian":
		return synth.Gaussian(size, rng, cfg), nil
	case "cholesky":
		return synth.Cholesky(size, rng, cfg), nil
	}
	return nil, fmt.Errorf("unknown synthetic topology %q", synthName)
}

// listVariants prints the registered variants and workloads of the shared
// experiment pipeline (cmd/experiments -list-variants adds the experiment
// registry on top).
func listVariants() error {
	fmt.Println("variants (cell metrics):")
	for _, name := range experiments.VariantNames() {
		v, err := experiments.LookupVariant(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s %s\n", name, strings.Join(v.Metrics(), ", "))
	}
	fmt.Println("\nworkloads:")
	for _, name := range experiments.WorkloadNames() {
		w, err := experiments.LookupWorkload(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s %s\n", name, w.Family())
	}
	return nil
}

func printTasks(tg *core.TaskGraph, res *schedule.Result) {
	type row struct {
		id    graph.NodeID
		block int
	}
	rows := make([]row, 0, tg.Len())
	for v := 0; v < tg.Len(); v++ {
		rows = append(rows, row{graph.NodeID(v), res.Partition.BlockOf[v]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].block != rows[j].block {
			return rows[i].block < rows[j].block
		}
		return res.ST[rows[i].id] < res.ST[rows[j].id]
	})
	fmt.Printf("%-20s %5s %5s %3s %8s %8s %8s %6s\n",
		"task", "block", "PE", "knd", "ST", "FO", "LO", "So")
	for _, r := range rows {
		n := tg.Nodes[r.id]
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", r.id)
		}
		fmt.Printf("%-20.20s %5d %5d %3.3s %8.0f %8.0f %8.0f %6.2f\n",
			name, r.block, res.PE[r.id], n.Kind.String(), res.ST[r.id], res.FO[r.id], res.LO[r.id], res.So[r.id])
	}
}
