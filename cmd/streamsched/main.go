// Command streamsched schedules a canonical task graph onto an abstract
// dataflow device and reports the streaming schedule, the FIFO buffer sizes
// required for deadlock freedom, and (optionally) a discrete-event
// validation of the result.
//
// Usage:
//
//	streamsched -synth chain -size 8 -pes 4                 # generated input
//	streamsched -graph app.json -pes 16 -variant rlx -sim   # JSON input
//	streamsched -model encoder -pes 256                     # ML model graphs
//	streamsched -synth fft -size 32 -sweep 32,64,96,128     # parallel PE sweep
//	streamsched -serve :8080                                # always-on service
//	streamsched -loadtest -rate 20 -requests 600            # in-process load test
//	streamsched -loadgen http://127.0.0.1:8080 -rate 50     # load a live service
//
// JSON graphs list canonical nodes (kind: compute/buffer/source/sink with
// per-edge in/out volumes) and edges as node-index pairs; see
// examples/quickstart for the builder API.
//
// -sweep schedules the graph at every PE count of a comma-separated list on
// the worker pool of internal/experiments (-workers goroutines, default
// GOMAXPROCS; -shard i/n runs only one shard of the list) and prints one
// table row per PE count. To regenerate the paper's full evaluation —
// including sharding across processes, artifact merging, and the
// persistent results cache — use cmd/experiments; docs/ARCHITECTURE.md
// maps how the two commands share the scheduling and experiment layers.
//
// -serve runs the always-on scheduling service of internal/service:
// streaming JSON submissions on POST /v1/submit, long-pollable results on
// GET /v1/result/{id}, health on GET /v1/statusz, admission control
// (-queue-cap, 429 + Retry-After past the cap), and batched scheduling
// ticks (-tick). SIGINT/SIGTERM drains in-flight jobs before exiting.
// docs/SERVICE.md documents the protocol and the load-test workflow.
//
// The batch scheduling and reporting logic lives in internal/streamcli;
// this file only parses flags and routes between the three modes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buffers"
	"repro/internal/desim"
	"repro/internal/noc"
	"repro/internal/results"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/streamcli"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streamsched:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "JSON task graph to schedule")
		synthName = flag.String("synth", "", "generate a synthetic graph: chain, fft, gaussian, cholesky")
		model     = flag.String("model", "", "generate an ML model graph: resnet, encoder, vgg, mlp (add -full for published sizes)")
		size      = flag.Int("size", 8, "synthetic size parameter (tasks, points, matrix, or tiles)")
		seed      = flag.Int64("seed", 1, "random seed for synthetic volumes (and load-test arrivals)")
		pes       = flag.Int("pes", 4, "number of processing elements")
		variant   = flag.String("variant", "lts", "spatial block heuristic: lts or rlx")
		sim       = flag.Bool("sim", false, "validate the schedule with the discrete-event simulator")
		simEngine = flag.String("sim-engine", "auto", "simulator engine for -sim: auto (cost-model pick), leap (event-leaping fast path), or reference (unit-stepping oracle); results are identical")
		dotPath   = flag.String("dot", "", "write the task graph in Graphviz DOT format to this file")
		showTasks = flag.Bool("tasks", false, "print the per-task schedule table")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file of the schedule")
		place     = flag.Bool("place", false, "place blocks on a 2D mesh NoC and report congestion")
		pipeline  = flag.Bool("pipeline", false, "report steady-state pipelining of repeated iterations")
		sweepPEs  = flag.String("sweep", "", "schedule at every PE count of this comma-separated list, in parallel")
		workers   = flag.Int("workers", 0, "worker goroutines for -sweep and -serve (default GOMAXPROCS / NumCPU)")
		shard     = flag.String("shard", "", "run only shard i of n sweep entries, format i/n")
		listVar   = flag.Bool("list-variants", false, "list the experiment pipeline's registered variants and workloads, then exit")

		// Service mode.
		serveAddr  = flag.String("serve", "", "run as an always-on scheduling service on this address (e.g. :8080)")
		queueCap   = flag.Int("queue-cap", service.DefaultQueueCap, "admission cap on queued+running jobs; past it submissions get 429 + Retry-After")
		tick       = flag.Duration("tick", service.DefaultTick, "scheduling-tick period: submissions arriving within one tick are batched")
		tenantsArg = flag.String("tenants", "", "tenant contract for -serve/-loadtest: a JSON file path or inline JSON object (weights, max_open quotas, slo_ms; SIGHUP reloads a file)")
		batchCap   = flag.Int("batch-cap", 0, "max jobs dispatched per scheduling tick (0 = whole queue); a positive cap makes weighted fair queueing bite under backlog")
		shed       = flag.String("shed", "", "load-shed policy at a full queue: tail-drop (default), largest-graph-first, or over-quota-first")
		cacheDir   = flag.String("cache", "", "persistent result-cache directory: schedule reports are reused across submissions and service restarts")

		// Load-test modes.
		loadURL   = flag.String("loadgen", "", "drive an open-loop load test against a running service at this base URL")
		loadTest  = flag.Bool("loadtest", false, "run an in-process load test: spins up a service (no socket) and drives it")
		rate      = flag.Float64("rate", 20, "load-test arrival rate, requests per second")
		requests  = flag.Int("requests", 600, "load-test request count")
		dist      = flag.String("dist", service.DistPoisson, "load-test arrival process: poisson or uniform")
		workload  = flag.String("workload", "synth:fft", "registered workload submitted by the load test (see -list-variants)")
		tenantMix = flag.String("tenant-mix", "", "load-test tenant mix: name=share[@slo_ms][/workload],... (see docs/SERVICE.md)")
		loadOut   = flag.String("load-out", "", "write the load-test JSON artifact ("+service.LoadSchema+") to this file")
	)
	flag.Parse()

	if *listVar {
		return streamcli.ListVariants(os.Stdout)
	}
	svcOpt := func(defaultPEs int) (service.Options, error) {
		tenants, err := streamcli.ParseTenantsArg(*tenantsArg)
		if err != nil {
			return service.Options{}, err
		}
		policy, err := service.ParseShedPolicy(*shed)
		if err != nil {
			return service.Options{}, err
		}
		opt := service.Options{
			QueueCap:   *queueCap,
			Workers:    *workers,
			Tick:       *tick,
			DefaultPEs: defaultPEs,
			Tenants:    tenants,
			BatchCap:   *batchCap,
			ShedPolicy: policy,
		}
		if *cacheDir != "" {
			cache, err := results.OpenCache(*cacheDir)
			if err != nil {
				return service.Options{}, err
			}
			opt.Cache = cache
		}
		return opt, nil
	}
	if *serveAddr != "" {
		opt, err := svcOpt(*pes)
		if err != nil {
			return err
		}
		// SIGHUP reloads the tenant contract only when it came from a
		// file (inline JSON has nothing new to read).
		reloadPath := ""
		if t := strings.TrimSpace(*tenantsArg); t != "" && !strings.HasPrefix(t, "{") {
			reloadPath = t
		}
		return runServe(*serveAddr, opt, reloadPath)
	}
	if *loadURL != "" || *loadTest {
		opt, err := svcOpt(service.DefaultPEs)
		if err != nil {
			return err
		}
		mix, err := streamcli.ParseTenantMix(*tenantMix)
		if err != nil {
			return err
		}
		return runLoadTest(loadParams{
			url:      *loadURL,
			svcOpt:   opt,
			workload: *workload,
			pes:      *pes,
			variant:  *variant,
			simulate: *sim,
			cfg: service.LoadConfig{
				Requests: *requests,
				Rate:     *rate,
				Dist:     *dist,
				Seed:     *seed,
				Timeout:  time.Minute,
				Tenants:  mix,
			},
			out: *loadOut,
		})
	}

	tg, err := streamcli.LoadGraph(*graphPath, *synthName, *model, *size, *seed)
	if err != nil {
		return err
	}
	v, err := streamcli.ParseVariant(*variant)
	if err != nil {
		return err
	}

	if *sweepPEs != "" {
		return streamcli.RunSweep(os.Stdout, tg, v, *sweepPEs, *workers, *shard)
	}

	part, err := schedule.Algorithm1(tg, *pes, schedule.Options{Variant: v})
	if err != nil {
		return err
	}
	res, err := schedule.Schedule(tg, part, *pes)
	if err != nil {
		return err
	}
	sizes := buffers.Sizes(tg, res)

	fmt.Printf("graph: %d nodes (%d compute), %d edges\n",
		tg.Len(), tg.NumComputeNodes(), tg.G.NumEdges())
	fmt.Printf("schedule (%s, %d PEs): %d spatial blocks, makespan %.0f\n",
		v, *pes, part.NumBlocks(), res.Makespan)
	fmt.Printf("T1 %.0f   speedup %.2f   SSLR %.3f   utilization %.1f%%\n",
		schedule.SequentialTime(tg), res.Speedup(tg), res.SSLR(tg), 100*res.Utilization(tg, *pes))

	var extra int64
	var cycleEdges int
	for _, e := range sizes {
		if e.OnCycle {
			cycleEdges++
			extra += e.Space
		}
	}
	fmt.Printf("buffers: %d streaming edges, %d on undirected cycles, %d total FIFO slots on cycle edges\n",
		len(sizes), cycleEdges, extra)

	if *showTasks {
		streamcli.PrintTasks(os.Stdout, tg, res)
	}
	if *gantt {
		fmt.Print(trace.Gantt(tg, res, 100))
		fmt.Print(trace.Summary(tg, res))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, tg, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
	if *place {
		mesh := noc.NewMesh(*pes)
		// The seed flag deterministically drives the annealer; equal inputs
		// give byte-identical placement reports.
		_, costs, err := noc.PlaceAll(tg, res, mesh, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("placement on %dx%d mesh (annealed):\n", mesh.W, mesh.H)
		for b, c := range costs {
			fmt.Printf("  block %2d: hop-volume %.0f, max link load %.0f, avg hops %.2f, congestion x%.2f\n",
				b, c.TotalHopVolume, c.MaxLinkLoad, c.AvgHops, c.CongestionFactor())
		}
	}
	if *pipeline {
		p := schedule.AnalyzePipeline(tg, res)
		fmt.Printf("pipeline: latency %.0f, initiation interval %.0f, steady-state throughput %.3g iters/cycle\n",
			p.Latency, p.InitiationInterval, p.Throughput())
	}

	if *sim {
		engine, err := desim.ParseEngine(*simEngine)
		if err != nil {
			return fmt.Errorf("-sim-engine: %w", err)
		}
		st, err := desim.Simulate(tg, res, desim.Config{FIFOCap: buffers.SizeMap(tg, res), Engine: engine})
		if err != nil {
			return err
		}
		if st.Deadlocked {
			fmt.Printf("simulation: DEADLOCK at cycle %d\n", st.DeadlockCycle)
		} else {
			fmt.Printf("simulation: makespan %.0f (relative error %+.2f%%), no deadlock\n",
				st.Makespan, 100*st.RelativeError(res.Makespan))
		}
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(tg.DOT("taskgraph")); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
	return nil
}

// runServe runs the always-on scheduling service until SIGINT/SIGTERM,
// then drains: in-flight and queued jobs complete, new submissions get
// 503, and the process exits 0 on a clean drain. SIGHUP reloads the
// tenant contract from tenantsPath (when the -tenants flag named a
// file); a malformed file is logged and the running contract kept.
func runServe(addr string, opt service.Options, tenantsPath string) error {
	s := service.New(opt)
	s.Start()

	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if tenantsPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if err := s.ReloadTenantsFile(tenantsPath); err != nil {
					fmt.Fprintf(os.Stderr, "streamsched: tenants reload failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "streamsched: reloaded tenant contract from %s\n", tenantsPath)
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "streamsched: serving on %s (queue cap %d, batch cap %d, tick %s, shed %s)\n",
		addr, opt.QueueCap, opt.BatchCap, opt.Tick, opt.ShedPolicy)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintln(os.Stderr, "streamsched: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	shutdownErr := srv.Shutdown(drainCtx)
	if err := s.Close(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	st := s.Status()
	fmt.Fprintf(os.Stderr, "streamsched: drained (accepted %d, completed %d, rejected %d)\n",
		st.Accepted, st.Completed, st.Rejected)
	return nil
}

type loadParams struct {
	url      string // remote base URL; empty means in-process
	svcOpt   service.Options
	workload string
	pes      int
	variant  string
	simulate bool
	cfg      service.LoadConfig
	out      string
}

// runLoadTest drives one open-loop load test — against a remote service
// (-loadgen URL) or an in-process one (-loadtest) — prints the summary,
// and optionally writes the versioned JSON artifact.
func runLoadTest(p loadParams) error {
	req := service.SubmitRequest{
		Workload: p.workload,
		Seed:     p.cfg.Seed,
		PEs:      p.pes,
		Variant:  p.variant,
		Simulate: p.simulate,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var target service.Target
	var local *service.Service
	if p.url != "" {
		target = &service.HTTPTarget{Client: &service.Client{Base: p.url}, Req: req}
	} else {
		local = service.New(p.svcOpt)
		local.Start()
		target = &service.LocalTarget{Service: local, Req: req}
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d requests at %.3g/s (%s arrivals, seed %d, workload %s)\n",
		p.cfg.Requests, p.cfg.Rate, p.cfg.Dist, p.cfg.Seed, p.workload)
	rep, err := service.RunLoad(ctx, p.cfg, target, nil)
	if err != nil {
		return err
	}
	if local != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := local.Close(drainCtx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	}

	fmt.Printf("requests %d  accepted %d  rejected %d (%.1f%%)  completed %d  shed %d  errors %d  dropped %d\n",
		rep.Requests, rep.Accepted, rep.Rejected, 100*rep.RejectionRate, rep.Completed, rep.Shed, rep.Errors, rep.Dropped())
	fmt.Printf("elapsed %.2fs  throughput %.2f/s\n", rep.ElapsedMs/1000, rep.ThroughputPerSec)
	fmt.Printf("latency p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms, rep.Latency.MaxMs)
	for _, ts := range rep.Tenants {
		fmt.Printf("tenant %-12s requests %d  completed %d  rejected %d  shed %d  slo_misses %d  p99 %.2fms\n",
			ts.Name, ts.Requests, ts.Completed, ts.Rejected, ts.Shed, ts.SLOMisses, ts.Latency.P99Ms)
	}

	if p.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", p.out)
	}
	if rep.Errors > 0 || rep.Dropped() != 0 {
		return fmt.Errorf("load test unhealthy: %d errors, %d dropped accepted jobs", rep.Errors, rep.Dropped())
	}
	return nil
}
