// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [-exp all|fig10|fig11|fig12|fig13|table2] [-graphs N] [-seed S] [-quick] [-full-models]
//	            [-workers N] [-shard i/n]
//
// The default reproduces every experiment with 100 random graphs per
// topology, as in the paper. -quick reduces graph counts and volumes for a
// fast smoke run. -full-models runs Table 2 on the full-size ResNet-50 and
// transformer-encoder graphs (tens of thousands of nodes).
//
// The sweeps behind Figures 10, 11, and 13 run on the concurrent engine of
// internal/experiments: -workers sizes its goroutine pool (default
// GOMAXPROCS) and -shard i/n runs only the i-th of n job shards so one sweep
// can be split across processes or machines. The aggregated tables are
// byte-identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig10, fig11, fig12, fig13, table2, ablation")
	graphs := flag.Int("graphs", 0, "random graphs per topology (default 100, or 15 with -quick)")
	seed := flag.Int64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "reduced graph counts and volumes")
	fullModels := flag.Bool("full-models", false, "run Table 2 on full-size model graphs")
	workers := flag.Int("workers", 0, "sweep worker goroutines (default GOMAXPROCS)")
	shard := flag.String("shard", "", "run only shard i of n sweep jobs, format i/n")
	flag.Parse()

	opt := experiments.Defaults()
	if *quick {
		opt = experiments.Quick()
	}
	if *graphs > 0 {
		opt.Graphs = *graphs
	}
	opt.Seed = *seed
	opt.Workers = *workers
	idx, count, err := experiments.ParseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if count > 1 {
		// Only the Fig10/11/13 sweeps shard; fig12, table2, and the ablation
		// would run whole in every shard, silently duplicating their work and
		// double-counting samples in a merge.
		switch *exp {
		case "fig10", "fig11", "fig13":
		default:
			fmt.Fprintf(os.Stderr, "-shard applies only to -exp fig10, fig11, or fig13 (%q would run in full in every shard)\n", *exp)
			os.Exit(2)
		}
	}
	opt.ShardIndex, opt.ShardCount = idx, count

	w := os.Stdout
	run := func(name string, f func()) {
		if *exp == "all" || *exp == name {
			f()
		}
	}
	run("fig10", func() { experiments.Fig10(w, opt) })
	run("fig11", func() { experiments.Fig11(w, opt) })
	run("fig12", func() { experiments.Fig12(w, opt) })
	run("fig13", func() {
		o := opt
		if !*quick {
			o.Config = experiments.Quick().Config // element-level simulation
		}
		experiments.Fig13(w, o)
	})
	run("table2", func() { experiments.Table2(w, *fullModels) })
	run("ablation", func() {
		o := opt
		if !*quick {
			o.Config = experiments.Quick().Config // element-level simulation
		}
		experiments.AblationBuffers(w, o)
	})

	switch *exp {
	case "all", "fig10", "fig11", "fig12", "fig13", "table2", "ablation":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
