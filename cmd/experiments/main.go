// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [-exp all|fig10|...|placement,heft,pipeline] [-graphs N] [-seed S]
//	            [-quick] [-full-models] [-workers N] [-shard i/n] [-out shard.json]
//	            [-cache dir] [-report] [-sim-engine leap|reference]
//	            [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	experiments -merge a.json b.json ...
//	experiments -serve addr [-lease-timeout d] [-batch N] [-state dir]
//	            [-snapshot-every N] [-token t] [-out merged.json] [spec flags]
//	experiments -agent http://host:port [-worker-id name] [-workers N] [-cache dir] [-token t]
//	experiments -status http://host:port [-token t]
//	experiments -list-variants
//	experiments -cache dir -cache-stats
//	experiments -cache dir -cache-gc 168h
//
// The default reproduces every experiment with 100 random graphs per
// topology, as in the paper, plus the repo's extensions (the NoC placement
// sweep, the HEFT baseline comparison, and the steady-state pipelining
// table). -exp selects a comma-separated subset. -quick reduces graph
// counts and volumes for a fast smoke run. -full-models runs Table 2 on the
// full-size ResNet-50 and transformer-encoder graphs (tens of thousands of
// nodes).
//
// Every experiment compiles to cell jobs on the concurrent engine of
// internal/experiments, dispatching through its Variant and Workload
// registries (-list-variants prints them): -workers sizes the goroutine
// pool (default GOMAXPROCS) and -shard i/n runs only the i-th of n job
// shards so one run can be split across processes or machines. -out writes
// the shard's cells to a versioned JSON artifact instead of rendering
// tables, and -merge validates and combines shard artifacts into the final
// tables, byte-identical to an unsharded run (see docs/ARTIFACTS.md).
// -cache points at a persistent results cache keyed by graph content, so
// repeated runs skip already-computed cells; -cache-stats and -cache-gc
// report and prune it. -report summarizes jobs, timings, and cache hits on
// stderr. A run whose jobs partly failed still writes its output but exits
// nonzero.
//
// Simulating experiments run on desim's auto engine, which picks the
// event-leaping fast path or the unit-stepping reference loop per simulation
// via a cost model; -sim-engine leap or -sim-engine reference forces one
// engine for A/B timing (cells are byte-identical in every mode, so caches
// and artifacts are unaffected).
// -cpuprofile and -memprofile write pprof profiles of the run — also with
// -agent — so sweep hot spots can be inspected without a test harness.
//
// Instead of picking shards by hand, a run can self-schedule across
// machines (see docs/DISTRIBUTED.md): -serve starts an HTTP job-queue
// coordinator that leases job batches to pull-based workers, requeues the
// batches of workers that die, and — once every job is resolved — writes
// the merged artifact (-out) or renders the tables, byte-identical to an
// unsharded local run. -agent joins a coordinator as a worker, reusing the
// local worker pool (-workers) and the persistent results cache (-cache).
// -status prints a coordinator's progress/failure report as JSON. With
// -state the coordinator journals every state transition to a directory
// and a killed coordinator restarted with the same flags resumes the run
// exactly where it crashed (docs/DISTRIBUTED.md, "Failure recovery");
// -token requires a shared bearer token of every client.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/desim"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/results"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, or a comma-separated subset of "+strings.Join(experiments.ExperimentNames(), ","))
	graphs := flag.Int("graphs", 0, "random graphs per topology (default 100, or 15 with -quick)")
	seed := flag.Int64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "reduced graph counts and volumes")
	fullModels := flag.Bool("full-models", false, "run Table 2 on full-size model graphs")
	workers := flag.Int("workers", 0, "engine worker goroutines (default GOMAXPROCS)")
	shard := flag.String("shard", "", "run only shard i of n cell jobs, format i/n")
	out := flag.String("out", "", "write this run's cells to a JSON shard artifact instead of rendering tables")
	cacheDir := flag.String("cache", "", "persistent results cache directory; computed cells are reused across runs")
	cacheStats := flag.Bool("cache-stats", false, "print cache entry count, bytes, and last-run hit/miss, then exit (requires -cache)")
	cacheGC := flag.Duration("cache-gc", 0, "delete cache entries older than this age (e.g. 168h), then exit (requires -cache)")
	merge := flag.Bool("merge", false, "merge the shard artifacts given as arguments and render their tables")
	report := flag.Bool("report", false, "print a job/timing/cache summary to stderr")
	listVariants := flag.Bool("list-variants", false, "list the registered experiments, variants, and workloads, then exit")
	serve := flag.String("serve", "", "serve the run as a distributed-sweep coordinator on this address (e.g. :8077), then write -out or render tables")
	agent := flag.String("agent", "", "join the coordinator at this URL as a pull-based worker")
	workerID := flag.String("worker-id", "", "worker name reported to the coordinator (default host-pid)")
	leaseTimeout := flag.Duration("lease-timeout", distrib.DefaultLeaseTimeout, "with -serve: requeue a leased batch not completed within this duration")
	batch := flag.Int("batch", distrib.DefaultBatchSize, "with -serve: jobs granted per lease")
	stateDir := flag.String("state", "", "with -serve: journal coordinator state to this directory so a killed coordinator can be restarted with the same flags and resume the run")
	snapshotEvery := flag.Int("snapshot-every", 0, "with -serve -state: journal records between snapshots (default 256; negative disables snapshots)")
	token := flag.String("token", "", "shared bearer token: required of every client with -serve, sent with -agent and -status")
	status := flag.String("status", "", "print the status JSON of the coordinator at this URL, then exit")
	simEngine := flag.String("sim-engine", "auto", "discrete-event engine for simulate cells: auto (cost-model pick), leap (event-leaping fast path), or reference (unit-stepping oracle); results are byte-identical")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if err := run(*exp, *graphs, *seed, *quick, *fullModels, *workers, *shard,
		*out, *cacheDir, *cacheStats, *cacheGC, *merge, *report, *listVariants,
		*serve, *agent, *workerID, *leaseTimeout, *batch, *stateDir, *snapshotEvery, *token, *status,
		*simEngine, *cpuProfile, *memProfile,
		explicit, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
}

func run(exp string, graphs int, seed int64, quick, fullModels bool, workers int,
	shard, out, cacheDir string, cacheStats bool, cacheGC time.Duration,
	merge, report, listVariants bool,
	serve, agent, workerID string, leaseTimeout time.Duration, batch int,
	stateDir string, snapshotEvery int, token, status string,
	simEngine, cpuProfile, memProfile string,
	explicit map[string]bool, args []string) error {

	engine, err := desim.ParseEngine(simEngine)
	if err != nil {
		return fmt.Errorf("-sim-engine: %w", err)
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if listVariants {
		return runListVariants(os.Stdout)
	}
	if status != "" {
		for name := range explicit {
			switch name {
			case "status", "token":
			default:
				return fmt.Errorf("-%s has no effect with -status", name)
			}
		}
		return runStatus(status, token)
	}
	if agent != "" {
		for name := range explicit {
			switch name {
			case "agent", "workers", "cache", "worker-id", "token", "cpuprofile", "memprofile":
			default:
				return fmt.Errorf("-%s has no effect with -agent (the coordinator defines the run)", name)
			}
		}
		return runAgent(agent, workerID, workers, cacheDir, token)
	}
	if serve != "" {
		for name := range explicit {
			switch name {
			case "serve", "exp", "graphs", "seed", "quick", "full-models",
				"lease-timeout", "batch", "out", "state", "snapshot-every", "token":
			default:
				return fmt.Errorf("-%s has no effect with -serve (workers run in -agent processes)", name)
			}
		}
		return runServe(serve, exp, graphs, seed, quick, fullModels, leaseTimeout, batch, stateDir, snapshotEvery, token, out)
	}
	if snapshotEvery != 0 || stateDir != "" {
		return fmt.Errorf("-state/-snapshot-every only apply to -serve")
	}
	if merge {
		// Merge mode takes its entire configuration from the artifacts'
		// metadata; any other flag would be silently ignored, so reject it.
		for name := range explicit {
			if name != "merge" {
				return fmt.Errorf("-%s has no effect with -merge (the artifacts' metadata defines the run)", name)
			}
		}
		return runMerge(args)
	}
	if cacheStats || cacheGC != 0 {
		// Cache maintenance modes: no experiments run.
		for name := range explicit {
			switch name {
			case "cache", "cache-stats", "cache-gc":
			default:
				return fmt.Errorf("-%s has no effect with -cache-stats/-cache-gc", name)
			}
		}
		return runCacheMaintenance(cacheDir, cacheStats, cacheGC)
	}
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments %q (artifact files go with -merge)", args)
	}

	specs, err := specsFromFlags(exp, graphs, seed, quick, fullModels)
	if err != nil {
		return err
	}
	plan, err := experiments.Compile(specs)
	if err != nil {
		return err
	}

	idx, count, err := experiments.ParseShard(shard)
	if err != nil {
		return err
	}
	runner := experiments.Runner{Workers: workers, ShardIndex: idx, ShardCount: count, SimEngine: engine}
	var cache *results.Cache
	if cacheDir != "" {
		cache, err = results.OpenCache(cacheDir)
		if err != nil {
			return err
		}
		runner.Results = cache
	}

	set, rep := runner.RunPlan(plan)
	experiments.ReportFailures(os.Stderr, rep)
	if report {
		fmt.Fprintf(os.Stderr, "report: %d jobs (%d skipped by shard), %d completed, %d cached, %d failed, elapsed %v, work %v\n",
			rep.Jobs, rep.Skipped, rep.Completed, rep.CacheHits, len(rep.Failures), rep.Elapsed, rep.Work)
	}
	if cache != nil {
		// Record this run's hit/miss so a later -cache-stats can report it.
		rc := results.RunCounters{Hits: rep.CacheHits, Misses: rep.Completed - rep.CacheHits, When: time.Now()}
		if err := cache.RecordRun(rc); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}

	if out != "" {
		art := &results.Artifact{
			Meta:  experiments.MetaFromSpecs(specs, idx, count),
			Cells: set.Cells(),
		}
		for _, f := range rep.Failures {
			art.Failures = append(art.Failures, results.Failure{Label: f.Job.String(), Err: f.Err.Error()})
		}
		if err := art.WriteFile(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d cells to %s (shard %d/%d); combine with -merge\n",
			set.Len(), out, art.Meta.ShardIndex, art.Meta.ShardCount)
		return failedJobsError(len(rep.Failures), rep.Jobs)
	}

	if count > 1 {
		fmt.Fprintf(os.Stderr, "note: rendering shard %d/%d only; use -out and -merge for complete tables\n", idx, count)
	}
	experiments.Render(os.Stdout, plan, set)
	return failedJobsError(len(rep.Failures), rep.Jobs)
}

// failedJobsError turns dropped cells into a nonzero exit: the tables (or
// the artifact) are still produced, but scripts must not mistake an
// incomplete run for success.
func failedJobsError(failed, jobs int) error {
	if failed == 0 {
		return nil
	}
	return fmt.Errorf("%d of %d jobs failed; output is incomplete", failed, jobs)
}

// specsFromFlags turns the spec-selecting flags into the experiment specs a
// local run, a -serve coordinator, and the e2e tests all agree on.
func specsFromFlags(exp string, graphs int, seed int64, quick, fullModels bool) ([]experiments.Spec, error) {
	opt := experiments.Defaults()
	if quick {
		opt = experiments.Quick()
	}
	if graphs > 0 {
		opt.Graphs = graphs
	}
	opt.Seed = seed
	return buildSpecs(exp, opt, quick, fullModels)
}

// buildSpecs selects the experiments to run, in canonical order; exp is
// "all" or a comma-separated subset. As in the paper's scripts, experiments
// that run element-level simulations (fig13, the ablation) scale their
// volumes down to the quick config on a full-size run.
func buildSpecs(exp string, opt experiments.Options, quick, fullModels bool) ([]experiments.Spec, error) {
	simOpt := opt
	if !quick {
		simOpt.Config = experiments.Quick().Config // element-level simulation
	}
	selected := map[string]bool{}
	if exp != "all" {
		for _, name := range strings.Split(exp, ",") {
			name = strings.TrimSpace(name)
			if _, err := experiments.LookupExperiment(name); err != nil {
				return nil, err
			}
			selected[name] = true
		}
	}
	var specs []experiments.Spec
	for _, name := range experiments.ExperimentNames() {
		if exp != "all" && !selected[name] {
			continue
		}
		e, err := experiments.LookupExperiment(name)
		if err != nil {
			return nil, err
		}
		switch {
		case e.ModelFlag:
			specs = append(specs, experiments.Spec{Name: name, Full: fullModels})
		case e.Simulates:
			specs = append(specs, experiments.Spec{Name: name, Opt: simOpt})
		default:
			specs = append(specs, experiments.Spec{Name: name, Opt: opt})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
	return specs, nil
}

// runListVariants prints the three registries: experiments in render order
// with their variants, then every variant with its declared metric keys,
// then every workload with its PE sweep.
func runListVariants(w *os.File) error {
	fmt.Fprintln(w, "experiments (render order):")
	for _, name := range experiments.ExperimentNames() {
		e, err := experiments.LookupExperiment(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s variants: %s\n", name, strings.Join(e.Variants, ", "))
	}
	fmt.Fprintln(w, "\nvariants (cell metrics):")
	for _, name := range experiments.VariantNames() {
		v, err := experiments.LookupVariant(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-14s %s\n", name, strings.Join(v.Metrics(), ", "))
	}
	fmt.Fprintln(w, "\nworkloads:")
	for _, name := range experiments.WorkloadNames() {
		wl, err := experiments.LookupWorkload(name)
		if err != nil {
			return err
		}
		pes := make([]string, 0, len(wl.PEs()))
		for _, p := range wl.PEs() {
			pes = append(pes, fmt.Sprint(p))
		}
		fmt.Fprintf(w, "  %-18s %-26s PEs %s\n", name, wl.Family(), strings.Join(pes, ","))
	}
	return nil
}

// runCacheMaintenance handles -cache-stats and -cache-gc: prune first if
// requested, then report the (post-GC) state.
func runCacheMaintenance(cacheDir string, stats bool, gc time.Duration) error {
	if cacheDir == "" {
		return fmt.Errorf("-cache-stats/-cache-gc need -cache to point at the cache directory")
	}
	if gc < 0 {
		return fmt.Errorf("-cache-gc wants a positive age, got %v", gc)
	}
	cache, err := results.OpenCache(cacheDir)
	if err != nil {
		return err
	}
	if gc != 0 {
		removed, freed, err := cache.GC(gc)
		if err != nil {
			return err
		}
		fmt.Printf("cache-gc: removed %d entries older than %v, freed %d bytes\n", removed, gc, freed)
	}
	st, err := cache.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("cache: %d entries, %d bytes in %s\n", st.Entries, st.Bytes, cache.Dir())
	if st.LastRun != nil {
		fmt.Printf("last run (%s): %d hits, %d misses\n",
			st.LastRun.When.Format(time.RFC3339), st.LastRun.Hits, st.LastRun.Misses)
	} else if stats {
		fmt.Println("last run: no counters recorded yet")
	}
	return nil
}

// runMerge combines shard artifacts from separate processes into the final
// tables: validate that the shards belong to one run and neither overlap
// nor miss cells, then render from the merged set.
func runMerge(files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("-merge needs at least one artifact file")
	}
	arts := make([]*results.Artifact, 0, len(files))
	for _, f := range files {
		a, err := results.ReadArtifactFile(f)
		if err != nil {
			return err
		}
		arts = append(arts, a)
	}
	set, meta, err := results.Merge(arts)
	if err != nil {
		return err
	}
	specs, err := experiments.SpecsFromMeta(meta)
	if err != nil {
		return err
	}
	plan, err := experiments.Compile(specs)
	if err != nil {
		return err
	}
	// Cells missing because their shard recorded a job failure render like
	// the in-process path: dropped from the aggregates, reported on stderr.
	excused := make(map[string]bool)
	var failed []results.Failure
	for _, a := range arts {
		for _, f := range a.Failures {
			excused[f.Label] = true
			failed = append(failed, f)
		}
	}
	if err := experiments.VerifySet(plan, set, excused); err != nil {
		return err
	}
	experiments.ReportArtifactFailures(os.Stderr, failed)
	experiments.Render(os.Stdout, plan, set)
	return failedJobsError(len(failed), len(plan.Jobs))
}

// runServe compiles the selected experiments and serves them as a
// distributed-sweep coordinator until every cell job is resolved by -agent
// workers, then writes the merged artifact (-out) or renders the tables —
// either way byte-identical to an unsharded local run of the same flags
// (docs/DISTRIBUTED.md). With -state the run is crash-safe: the address is
// bound (and served 503 + Retry-After) before any journal replay, so a
// restarted coordinator picks up a half-finished run where it left off
// while its surviving agents retry into the recovery gate.
func runServe(addr, exp string, graphs int, seed int64, quick, fullModels bool,
	leaseTimeout time.Duration, batch int, stateDir string, snapshotEvery int, token, out string) error {

	specs, err := specsFromFlags(exp, graphs, seed, quick, fullModels)
	if err != nil {
		return err
	}
	coord, err := distrib.ServeRecovering(addr, os.Stderr, func() (*distrib.Coordinator, error) {
		return distrib.NewCoordinator(specs, distrib.CoordinatorOptions{
			LeaseTimeout:  leaseTimeout,
			BatchSize:     batch,
			StateDir:      stateDir,
			SnapshotEvery: snapshotEvery,
			Token:         token,
		})
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	art := coord.Artifact()
	experiments.ReportArtifactFailures(os.Stderr, art.Failures)
	if out != "" {
		if err := art.WriteFile(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d cells to %s (merged distributed run)\n", len(art.Cells), out)
		return failedJobsError(len(art.Failures), len(coord.Plan().Jobs))
	}
	set := results.NewSet()
	for _, c := range art.Cells {
		if err := set.Add(c); err != nil {
			return err
		}
	}
	experiments.Render(os.Stdout, coord.Plan(), set)
	return failedJobsError(len(art.Failures), len(coord.Plan().Jobs))
}

// runAgent joins a coordinator as a pull-based worker until the run is
// done. The coordinator defines the experiments; only the local execution
// knobs (-workers, -cache, -worker-id) apply here.
func runAgent(url, workerID string, workers int, cacheDir, token string) error {
	a := &distrib.Agent{URL: url, Worker: workerID, Workers: workers, Token: token}
	if cacheDir != "" {
		cache, err := results.OpenCache(cacheDir)
		if err != nil {
			return err
		}
		a.Cache = cache
	}
	rep, err := a.Run(context.Background())
	if err != nil {
		return err
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of this agent's %d jobs failed (the coordinator recorded them)", rep.Failed, rep.Jobs)
	}
	return nil
}

// runStatus fetches and pretty-prints a coordinator's /v1/status report.
func runStatus(url, token string) error {
	st, err := distrib.FetchStatus(context.Background(), nil, url, token)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}
