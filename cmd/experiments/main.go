// Command experiments regenerates the paper's tables and figures as text.
//
// Usage:
//
//	experiments [-exp all|fig10|fig11|fig12|fig13|table2] [-graphs N] [-seed S] [-quick] [-full-models]
//
// The default reproduces every experiment with 100 random graphs per
// topology, as in the paper. -quick reduces graph counts and volumes for a
// fast smoke run. -full-models runs Table 2 on the full-size ResNet-50 and
// transformer-encoder graphs (tens of thousands of nodes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig10, fig11, fig12, fig13, table2, ablation")
	graphs := flag.Int("graphs", 0, "random graphs per topology (default 100, or 15 with -quick)")
	seed := flag.Int64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "reduced graph counts and volumes")
	fullModels := flag.Bool("full-models", false, "run Table 2 on full-size model graphs")
	flag.Parse()

	opt := experiments.Defaults()
	if *quick {
		opt = experiments.Quick()
	}
	if *graphs > 0 {
		opt.Graphs = *graphs
	}
	opt.Seed = *seed

	w := os.Stdout
	run := func(name string, f func()) {
		if *exp == "all" || *exp == name {
			f()
		}
	}
	run("fig10", func() { experiments.Fig10(w, opt) })
	run("fig11", func() { experiments.Fig11(w, opt) })
	run("fig12", func() { experiments.Fig12(w, opt) })
	run("fig13", func() {
		o := opt
		if !*quick {
			o.Config = experiments.Quick().Config // element-level simulation
		}
		experiments.Fig13(w, o)
	})
	run("table2", func() { experiments.Table2(w, *fullModels) })
	run("ablation", func() {
		o := opt
		if !*quick {
			o.Config = experiments.Quick().Config // element-level simulation
		}
		experiments.AblationBuffers(w, o)
	})

	switch *exp {
	case "all", "fig10", "fig11", "fig12", "fig13", "table2", "ablation":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
