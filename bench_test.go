// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure. Figures 10/11/13 benchmark the scheduling pipeline on the
// paper's synthetic topologies; Figure 12 contrasts the canonical-graph
// scheduler with the CSDF self-timed engine (the source of the paper's
// 2-3 orders-of-magnitude analysis-time gap); Table 2 schedules the ML model
// graphs. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/buffers"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/desim"
	"repro/internal/experiments"
	"repro/internal/onnx"
	"repro/internal/schedule"
	"repro/internal/synth"
)

// topologies returns one representative graph per synthetic family, with
// the paper's sizes (Figure 10 captions).
func topologies(cfg synth.Config) map[string]*core.TaskGraph {
	rng := rand.New(rand.NewSource(42))
	return map[string]*core.TaskGraph{
		"Chain":    synth.Chain(8, rng, cfg),
		"FFT":      synth.FFT(32, rng, cfg),
		"Gaussian": synth.Gaussian(16, rng, cfg),
		"Cholesky": synth.Cholesky(8, rng, cfg),
	}
}

// BenchmarkFig10Streaming measures the full streaming pipeline (partition +
// schedule) per topology at the largest PE count of Figure 10.
func BenchmarkFig10Streaming(b *testing.B) {
	for name, tg := range topologies(synth.DefaultConfig()) {
		p := 128
		if name == "Chain" {
			p = 8
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				part, err := schedule.PartitionRLX(tg, p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := schedule.Schedule(tg, part, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Baseline measures the non-streaming CP/MISF list scheduler
// on the same inputs.
func BenchmarkFig10Baseline(b *testing.B) {
	for name, tg := range topologies(synth.DefaultConfig()) {
		p := 128
		if name == "Chain" {
			p = 8
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Schedule(tg, p, baseline.Options{Insertion: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11StreamingDepth measures the T_s-infinity computation that
// normalizes the SSLR metric.
func BenchmarkFig11StreamingDepth(b *testing.B) {
	for name, tg := range topologies(synth.DefaultConfig()) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = schedule.StreamingDepth(tg)
			}
		})
	}
}

// BenchmarkFig12 contrasts the two analyses of Section 7.2 on identical
// graphs: STR-SCHD is the canonical-graph heuristic with P = #tasks; CSDF is
// the self-timed optimal-throughput engine. The per-op gap reproduces the
// scheduling-time plot.
func BenchmarkFig12(b *testing.B) {
	for name, tg := range topologies(synth.DefaultConfig()) {
		b.Run("STRSCHD/"+name, func(b *testing.B) {
			p := tg.NumComputeNodes()
			for i := 0; i < b.N; i++ {
				part, err := schedule.PartitionRLX(tg, p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := schedule.Schedule(tg, part, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("CSDF/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := csdf.FromCanonical(tg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.SelfTimedMakespan(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Simulation measures the Appendix B discrete-event
// validation of one scheduled graph on all three desim engines: Leap is
// the event-leaping fast path, Reference is the unit-stepping oracle loop
// kept as the executable specification, and Auto is the cost-model pick
// the sweeps now default to. Each sub-benchmark reuses one Scratch,
// exactly like the sweep workers do (after warm-up the simulation
// allocates nothing). All engines' Stats are byte-identical; only their
// speed differs, and the committed BENCH_*.json baseline records the gap
// as part of the repository's performance trajectory — Auto must stay
// within ~5% of whichever fixed engine is faster per topology.
func BenchmarkFig13Simulation(b *testing.B) {
	for name, tg := range topologies(synth.SmallConfig()) {
		p := 32
		if name == "Chain" {
			p = 8
		}
		part, err := schedule.PartitionLTS(tg, p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := schedule.Schedule(tg, part, p)
		if err != nil {
			b.Fatal(err)
		}
		caps := buffers.SizeMap(tg, res)
		for _, eng := range []struct {
			name   string
			engine desim.Engine
		}{{"Leap", desim.EngineLeap}, {"Reference", desim.EngineReference}, {"Auto", desim.EngineAuto}} {
			b.Run(name+"/"+eng.name, func(b *testing.B) {
				s := desim.NewScratch()
				cfg := desim.Config{FIFOCap: caps, Engine: eng.engine}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st, err := s.Simulate(tg, res, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if st.Deadlocked {
						b.Fatal("unexpected deadlock")
					}
				}
			})
		}
	}
}

// BenchmarkTable2 schedules the ML model graphs: the tiny variants per
// iteration, and the full-size graphs once under -benchtime=1x if desired.
func BenchmarkTable2(b *testing.B) {
	resnet, err := onnx.ResNet50(onnx.TinyResNet50())
	if err != nil {
		b.Fatal(err)
	}
	encoder, err := onnx.TransformerEncoder(onnx.BaseEncoder())
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]struct {
		tg *core.TaskGraph
		p  int
	}{
		"ResnetTiny":  {resnet, 256},
		"EncoderFull": {encoder, 1024},
	}
	for name, m := range models {
		b.Run(name+"/STR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				part, err := schedule.PartitionLTS(m.tg, m.p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := schedule.Schedule(m.tg, part, m.p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/NSTR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Schedule(m.tg, m.p, baseline.Options{Insertion: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBufferSizing isolates the Section 6 analysis (undirected-cycle
// detection plus Equation 5) from the rest of the pipeline.
func BenchmarkBufferSizing(b *testing.B) {
	tg := topologies(synth.DefaultConfig())["Cholesky"]
	part, err := schedule.PartitionLTS(tg, 64)
	if err != nil {
		b.Fatal(err)
	}
	res, err := schedule.Schedule(tg, part, 64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = buffers.Sizes(tg, res)
	}
}

// BenchmarkPartitionVariants is the ablation between the Algorithm 1
// variants and the Appendix A partitioners on one graph.
func BenchmarkPartitionVariants(b *testing.B) {
	tg := topologies(synth.DefaultConfig())["Gaussian"]
	b.Run("SB-LTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schedule.PartitionLTS(tg, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SB-RLX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schedule.PartitionRLX(tg, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ByWork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schedule.PartitionByWork(tg, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LevelOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schedule.PartitionLevelOrder(tg, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestExperimentHarness smoke-runs every experiment end to end at reduced
// size, so the cmd/experiments paths stay green.
func TestExperimentHarness(t *testing.T) {
	opt := experiments.Quick()
	opt.Graphs = 3
	experiments.Fig10(io.Discard, opt)
	experiments.Fig11(io.Discard, opt)
	experiments.Fig12(io.Discard, opt)
	experiments.Fig13(io.Discard, opt)
	experiments.Table2(io.Discard, false)
}
